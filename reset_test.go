package ftgcs

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"ftgcs/internal/metrics"
)

// resetMatrix is the feature matrix for the reset-vs-fresh differential:
// every configuration axis that owns mutable run state appears at least
// once (stateful drift models, stateful delay RNG streams, Byzantine
// strategies, crash and off-spec faults, the global-skew estimator, round
// and cluster instrumentation, staggered starts).
func resetMatrix() map[string]*Scenario {
	silentCtor := func() Attack { return Silent() }
	return map[string]*Scenario{
		"baseline": NewScenario(
			WithTopology(Line(3)),
			WithClusters(4, 1),
			WithHorizon(2),
		),
		"randomwalk-extremal": NewScenario(
			WithTopology(Line(3)),
			WithClusters(4, 1),
			WithDriftName("randomwalk"),
			WithDelayName("extremal"),
			WithHorizon(2),
		),
		"adaptive-attack": NewScenario(
			WithTopology(Line(3)),
			WithClusters(4, 1),
			WithAttackName("adaptive-two-faced", 3, 7),
			WithHorizon(2),
		),
		"crash-offspec": NewScenario(
			WithTopology(Line(3)),
			WithClusters(4, 1),
			WithFaults(
				FaultSpec{Node: 2, CrashAt: 0.5},
				FaultSpec{Node: 5, OffSpecRate: 1.002},
			),
			WithHorizon(2),
		),
		"tracking-stagger": NewScenario(
			WithTopology(Ring(3)),
			WithClusters(4, 1),
			WithDriftName("sine"),
			WithRoundTracking(),
			WithClusterTracking(),
			WithStaggerStart(0.002),
			WithHorizon(2),
		),
		"no-globalskew": NewScenario(
			WithTopology(Line(3)),
			WithClusters(4, 1),
			WithGlobalSkew(false),
			WithDriftName("gradient"),
			WithHorizon(2),
		),
		"per-cluster-attack": NewScenario(
			WithTopology(Grid(2, 2)),
			WithClusters(4, 1),
			WithAttackPerCluster(silentCtor, 2),
			WithHorizon(2),
		),
	}
}

// dumpSystem serializes everything externally observable about a finished
// run: every recorded series (CSV and JSON forms), the bound report, the
// raw summary, per-node round traces and per-cluster pulse diameters.
func dumpSystem(t *testing.T, sys *System) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "report=%+v\nsummary=%+v\n", sys.Report(), sys.Summary(0.2))
	for v := 0; v < sys.Nodes(); v++ {
		times, values, modes := sys.RoundTrace(v)
		if times != nil {
			fmt.Fprintf(&buf, "trace[%d]=%v|%v|%v\n", v, times, values, modes)
		}
	}
	for c := 0; c < sys.Clusters(); c++ {
		if pd := sys.PulseDiameters(ClusterID(c)); len(pd) > 0 {
			fmt.Fprintf(&buf, "pd[%d]=%v\n", c, pd)
		}
	}
	return buf.String()
}

// runFresh builds sc at the given seed and runs it to its horizon.
func runFresh(t *testing.T, sc *Scenario, seed int64) *System {
	t.Helper()
	sys, err := sc.With(WithSeed(seed)).Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(sc.Horizon(sys.Params())); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSystemResetMatchesFreshBuild is the core differential: for every
// matrix entry, build at seed A, run, Reset to seed B, run — the second
// run's full observable output must be byte-identical to a fresh build at
// seed B. A same-seed reset must likewise replay the first run exactly.
func TestSystemResetMatchesFreshBuild(t *testing.T) {
	for name, sc := range resetMatrix() {
		t.Run(name, func(t *testing.T) {
			const seedA, seedB = 7, 99
			wantA := dumpSystem(t, runFresh(t, sc, seedA))
			wantB := dumpSystem(t, runFresh(t, sc, seedB))

			sys, err := sc.With(WithSeed(seedA)).Build()
			if err != nil {
				t.Fatal(err)
			}
			h := sc.Horizon(sys.Params())
			if !sys.CanReset() {
				t.Fatal("core-backed system must be resettable")
			}
			if err := sys.Run(h); err != nil {
				t.Fatal(err)
			}
			if got := dumpSystem(t, sys); got != wantA {
				t.Fatal("pre-reset run diverged from fresh build at the same seed")
			}

			if err := sys.Reset(seedB); err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(h); err != nil {
				t.Fatal(err)
			}
			if got := dumpSystem(t, sys); got != wantB {
				t.Fatalf("reset(seed=%d) run differs from fresh build:\nfresh: %.400s\nreset: %.400s", seedB, wantB, dumpSystem(t, sys))
			}

			// Same-seed reset: replay must be exact, including a
			// double-reset (reset of an unrun system) in the middle.
			if err := sys.Reset(seedA); err != nil {
				t.Fatal(err)
			}
			if err := sys.Reset(seedA); err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(h); err != nil {
				t.Fatal(err)
			}
			if got := dumpSystem(t, sys); got != wantA {
				t.Fatalf("same-seed replay after reset diverged")
			}
		})
	}
}

// TestSystemResetSeedPermutation is the property test: one system pushed
// through a shuffled order of seeds, twice, must reproduce the fresh-build
// output of every seed regardless of position or repetition.
func TestSystemResetSeedPermutation(t *testing.T) {
	sc := resetMatrix()["randomwalk-extremal"]
	seeds := []int64{3, 11, 42, 1000003, -5}

	want := make(map[int64]string, len(seeds))
	for _, seed := range seeds {
		want[seed] = dumpSystem(t, runFresh(t, sc, seed))
	}

	order := append(append([]int64(nil), seeds...), seeds...)
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	sys, err := sc.With(WithSeed(order[0])).Build()
	if err != nil {
		t.Fatal(err)
	}
	h := sc.Horizon(sys.Params())
	for i, seed := range order {
		if i > 0 {
			if err := sys.Reset(seed); err != nil {
				t.Fatalf("reset #%d (seed %d): %v", i, seed, err)
			}
		}
		if err := sys.Run(h); err != nil {
			t.Fatalf("run #%d (seed %d): %v", i, seed, err)
		}
		if got := dumpSystem(t, sys); got != want[seed] {
			t.Fatalf("run #%d: seed %d diverged from its fresh build", i, seed)
		}
	}
}

// TestSystemResetAfterCanceledRun cancels a run mid-flight from another
// goroutine (exercising the Progress/cancel atomics under -race), then
// resets and re-runs: no event from the truncated run may survive into
// the replay, and stale generation counters must keep old handles inert.
func TestSystemResetAfterCanceledRun(t *testing.T) {
	sc := resetMatrix()["adaptive-attack"]
	const seed = 13
	want := dumpSystem(t, runFresh(t, sc, seed))

	sys, err := sc.With(WithSeed(seed)).Build()
	if err != nil {
		t.Fatal(err)
	}
	h := sc.Horizon(sys.Params())

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for sys.Progress().Events < 500 {
			runtime.Gosched()
		}
		cancel()
	}()
	err = sys.RunContext(ctx, h)
	cancel()
	if err == nil {
		// The run outpaced the canceler — still a valid state to reset.
		t.Log("run completed before cancellation")
	}

	if err := sys.Reset(seed); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(h); err != nil {
		t.Fatal(err)
	}
	if got := dumpSystem(t, sys); got != want {
		t.Fatal("replay after canceled run diverged from fresh build")
	}
}

// TestBackendResetCapability pins the capability split: core-backed
// systems reset, custom backends without the method report
// ErrNotResettable and CanReset false.
func TestBackendResetCapability(t *testing.T) {
	sys, err := NewScenario(
		WithTopology(Line(3)),
		WithClusters(4, 1),
	).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !sys.CanReset() {
		t.Fatal("core backend: CanReset = false")
	}

	stub := NewScenario(
		WithBackend(func(seed int64, p Params) (Backend, error) {
			return nopBackend{}, nil
		}),
	)
	ssys, err := stub.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ssys.CanReset() {
		t.Fatal("stub backend: CanReset = true")
	}
	if err := ssys.Reset(1); err != ErrNotResettable {
		t.Fatalf("stub backend Reset err = %v, want ErrNotResettable", err)
	}
}

type nopBackend struct{}

func (nopBackend) Run(until float64) error                             { return nil }
func (nopBackend) RunContext(ctx context.Context, until float64) error { return nil }
func (nopBackend) Now() float64                                        { return 0 }
func (nopBackend) Progress() Progress                                  { return Progress{} }
func (nopBackend) Summarize(warmup float64) Summary                    { return Summary{} }
func (nopBackend) Recorder() *metrics.Recorder                         { return nil }
func (nopBackend) Diameter() int                                       { return 1 }

// TestScenarioSameBuild walks the build-key comparison knob by knob.
func TestScenarioSameBuild(t *testing.T) {
	topo := Line(3)
	base := func() *Scenario {
		return NewScenario(
			WithTopology(topo),
			WithClusters(4, 1),
			WithDriftName("gradient"),
			WithDelayName("uniform"),
			WithHorizon(2),
			WithSeed(1),
		)
	}
	if !base().SameBuild(base()) {
		t.Fatal("identical scenarios must share a build key")
	}
	if !base().With(WithSeed(2)).SameBuild(base()) {
		t.Fatal("seed must not participate in the build key")
	}
	if !base().With(WithObserver(func(*System) (any, error) { return nil, nil })).SameBuild(base()) {
		t.Fatal("observers must not participate in the build key")
	}

	diff := map[string]*Scenario{
		"topology-pointer": base().With(WithTopology(Line(3))),
		"topology-name":    base().With(WithTopologyName("line", 3)),
		"clusters":         base().With(WithClusters(5, 1)),
		"fault-budget":     base().With(WithClusters(4, 0)),
		"physical":         base().With(WithPhysical(2e-3, 1e-3, 1e-4)),
		"constants":        base().With(WithConstants(5, 0.25)),
		"preset":           base().With(WithPreset(PresetPaperStrict)),
		"drift":            base().With(WithDriftName("sine")),
		"delay":            base().With(WithDelayName("extremal")),
		"faults":           base().With(WithFaults(FaultSpec{Node: 1, CrashAt: 1})),
		"attack":           base().With(WithAttackName("silent", 3)),
		"globalskew":       base().With(WithGlobalSkew(false)),
		"sample-interval":  base().With(WithSampleInterval(0.01)),
		"horizon":          base().With(WithHorizon(3)),
		"horizon-rounds":   base().With(WithHorizonRounds(10)),
		"stagger":          base().With(WithStaggerStart(0.01)),
		"track-rounds":     base().With(WithRoundTracking()),
		"track-clusters":   base().With(WithClusterTracking()),
		"mode-override":    base().With(WithModeOverride(func(NodeID, ClusterID, int) (int, bool) { return 0, false })),
		"hook":             base().With(WithMidRunHook(1, func(*System) error { return nil })),
	}
	for name, sc := range diff {
		if sc.SameBuild(base()) {
			t.Errorf("%s: differing scenario reported same build key", name)
		}
	}

	// Per-cluster attacks from value-returning constructors are the jobs
	// replication shape: distinct closures, equal expanded strategies.
	pc := func() *Scenario {
		return base().With(WithAttackPerCluster(func() Attack { return Silent() }, 2))
	}
	if !pc().SameBuild(pc()) {
		t.Fatal("equal per-cluster attack plants must share a build key")
	}
}

// TestSweepReuseDifferential runs a replicate-shaped sweep (pinned
// topology, varying seeds, one build-breaking intruder in the middle) with
// the reuse fast path on and off, across worker counts, and requires
// deeply equal results.
func TestSweepReuseDifferential(t *testing.T) {
	topo := Line(3)
	base := NewScenario(
		WithTopology(topo),
		WithClusters(4, 1),
		WithDriftName("randomwalk"),
		WithAttackName("silent", 3),
		WithHorizon(2),
		WithObserver(func(sys *System) (any, error) {
			return sys.Summary(0.2).MaxLocalCluster, nil
		}),
	)
	var scenarios []*Scenario
	for seed := int64(1); seed <= 8; seed++ {
		scenarios = append(scenarios, base.With(WithSeed(seed), WithName("seed %d", seed)))
	}
	// An intruder with a different build key forces a cache rebuild
	// mid-stream; the scenario after it must still be correct.
	scenarios[4] = base.With(WithSeed(5), WithDriftName("sine"), WithName("intruder"))

	strip := func(rs []SweepResult) []SweepResult {
		for i := range rs {
			if rs[i].Err != nil {
				t.Fatalf("scenario %d (%s): %v", rs[i].Index, rs[i].Name, rs[i].Err)
			}
		}
		return rs
	}
	for _, workers := range []int{1, 4} {
		reused := strip(Sweep{Workers: workers}.Run(scenarios))
		rebuilt := strip(Sweep{Workers: workers, NoReuse: true}.Run(scenarios))
		if !reflect.DeepEqual(reused, rebuilt) {
			t.Fatalf("workers=%d: reuse and rebuild sweeps differ:\nreuse:   %+v\nrebuild: %+v", workers, reused, rebuilt)
		}
	}
}
