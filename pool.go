package ftgcs

import "sync"

// PoolStats is a SystemPool's cumulative and instantaneous state.
// Hits/Misses/Evictions are monotone (suitable for counter bridging);
// Entries is the current pool occupancy.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// SystemPool shares built Systems across sweeps — and across the jobs
// that own those sweeps — keyed by Scenario.SameBuild. Where the
// per-worker cache inside one Sweep reuses a system across consecutive
// replicates of a single request, the pool carries that reuse across
// request boundaries: back-to-back fresh specs sharing a topology, k/f
// and preset pay a Reset (~17µs) instead of a Build (~720µs).
//
// The pool is bounded: Release evicts the least-recently-returned entry
// past capacity, so it can never pin more than cap built systems. All
// methods are safe for concurrent use, and every method on a nil
// *SystemPool is a no-op — a nil pool simply disables cross-job reuse.
type SystemPool struct {
	mu  sync.Mutex
	cap int
	// entries is ordered oldest → newest; Acquire scans newest-first so
	// the hottest build key wins, and eviction drops the oldest.
	entries                 []poolEntry
	hits, misses, evictions uint64

	// Topology intern table, under its own lock (Intern runs on submit
	// paths that never touch the system entries).
	topoMu sync.Mutex
	topos  map[string]*Topology
}

// poolEntry pairs an idle system with the scenario that built (or last
// reset) it — the build key the next Acquire checks against.
type poolEntry struct {
	sc  *Scenario
	sys *System
}

// NewSystemPool returns a pool bounded to capacity idle systems
// (≤0 selects 8).
func NewSystemPool(capacity int) *SystemPool {
	if capacity <= 0 {
		capacity = 8
	}
	return &SystemPool{cap: capacity}
}

// Acquire removes and returns a pooled system whose build key matches
// sc, already Reset to sc's seed and ready to run — or nil when no
// compatible system is pooled (the caller builds). A system whose Reset
// fails is dropped, never handed out.
func (p *SystemPool) Acquire(sc *Scenario) *System {
	if p == nil || sc == nil {
		return nil
	}
	p.mu.Lock()
	for i := len(p.entries) - 1; i >= 0; i-- {
		e := p.entries[i]
		if e.sys.CanReset() && sc.SameBuild(e.sc) {
			p.entries = append(p.entries[:i], p.entries[i+1:]...)
			p.mu.Unlock()
			// Reset outside the lock: it touches the whole system arena
			// and must not serialize unrelated Acquires.
			if err := e.sys.Reset(sc.seed); err != nil {
				p.note(&p.misses)
				return nil
			}
			p.note(&p.hits)
			return e.sys
		}
	}
	p.mu.Unlock()
	p.note(&p.misses)
	return nil
}

// Release returns an idle system to the pool under sc's build key.
// Non-poolable pairs are dropped silently: a nil system, a system whose
// backend forbids Reset, or a scenario whose build key cannot match even
// itself (hooks, custom backend, unpinned topology — see
// Scenario.SameBuild). Past capacity the oldest entry is evicted.
func (p *SystemPool) Release(sc *Scenario, sys *System) {
	if p == nil || sc == nil || sys == nil || !sys.CanReset() || !sc.SameBuild(sc) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		if e.sys == sys {
			return // already pooled; never double-insert one system
		}
	}
	p.entries = append(p.entries, poolEntry{sc: sc, sys: sys})
	for len(p.entries) > p.cap {
		copy(p.entries, p.entries[1:])
		p.entries = p.entries[:len(p.entries)-1]
		p.evictions++
	}
}

// maxInternedTopologies bounds the pool's topology intern table. Past
// the cap the table is dropped wholesale — interning is an optimization,
// so resetting it costs pool misses, never correctness.
const maxInternedTopologies = 256

// Intern returns the pool's canonical *Topology equal to t: the
// previously interned graph with the same name and element-wise ordered
// structure when one exists, else t itself after recording it. Equal
// graphs produce byte-identical simulations, so swapping a pinned
// topology for the interned pointer is invisible to results — while
// making SameBuild's pointer-identity check succeed across
// independently constructed scenarios, which is what lets the pool
// match build keys across jobs and experiments. Randomized families
// that resolved differently fail Equal and replace the entry — never a
// false hit. Safe on a nil pool (returns t unchanged).
func (p *SystemPool) Intern(t *Topology) *Topology {
	if p == nil || t == nil {
		return t
	}
	p.topoMu.Lock()
	defer p.topoMu.Unlock()
	if prev, ok := p.topos[t.Name()]; ok && prev.Equal(t) {
		return prev
	}
	if p.topos == nil || len(p.topos) >= maxInternedTopologies {
		p.topos = make(map[string]*Topology, 16)
	}
	p.topos[t.Name()] = t
	return t
}

// withInternedTopology swaps sc's pinned topology for the pool's
// canonical equal graph, so the scenario's build key can match systems
// pooled by other sweeps. No-op for unpinned topologies: named families
// resolve with the scenario seed and must stay per-scenario.
func (sc *Scenario) withInternedTopology(p *SystemPool) *Scenario {
	if sc.topology == nil || sc.err != nil {
		return sc
	}
	if t := p.Intern(sc.topology); t != sc.topology {
		return sc.With(WithTopology(t))
	}
	return sc
}

// Stats snapshots the pool's counters and occupancy.
func (p *SystemPool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, Entries: len(p.entries)}
}

// note bumps one of the pool's counters under the lock.
func (p *SystemPool) note(c *uint64) {
	p.mu.Lock()
	*c++
	p.mu.Unlock()
}
