package ftgcs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"ftgcs"
)

func TestReportJSONRoundTrip(t *testing.T) {
	rep := ftgcs.Report{
		Horizon:             30,
		Warmup:              3,
		MaxIntraClusterSkew: 1.25e-4,
		IntraClusterBound:   4.5e-4,
		MaxLocalSkew:        3e-4,
		LocalSkewBound:      1.2e-3,
		MaxGlobalSkew:       5e-4,
		GlobalSkewBound:     2e-3,
		Events:              123456,
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"allWithinBounds":true`)) {
		t.Fatalf("marshal missing derived bounds field: %s", b)
	}
	var back ftgcs.Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != rep {
		t.Fatalf("round trip changed report:\n got %+v\nwant %+v", back, rep)
	}

	b2, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("report marshalling is not deterministic")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	sum := ftgcs.Summary{
		Horizon:          30,
		MaxIntraSkew:     1e-4,
		MaxLocalCluster:  2e-4,
		MaxLocalNode:     math.Inf(-1), // series never recorded
		MaxGlobal:        4e-4,
		MaxMaxEstLag:     math.Inf(-1),
		MaxEstViolations: 0,
		Events:           99,
	}
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"maxLocalNode":null`)) {
		t.Fatalf("non-finite maximum should encode as null: %s", b)
	}
	var back ftgcs.Summary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != sum {
		t.Fatalf("round trip changed summary:\n got %+v\nwant %+v", back, sum)
	}
}

func TestReportJSONFromLiveRun(t *testing.T) {
	rep, err := ftgcs.NewScenario(
		ftgcs.WithTopology(ftgcs.Line(2)),
		ftgcs.WithClusters(4, 1),
		ftgcs.WithPhysical(1e-3, 1e-3, 1e-4),
		ftgcs.WithSeed(1),
		ftgcs.WithHorizon(5),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("a live report must serialize cleanly: %v", err)
	}
	var back ftgcs.Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != rep {
		t.Fatalf("live report round trip changed values")
	}
}
