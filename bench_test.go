// Benchmarks regenerating every reproduction experiment (E1–E14, one per
// quantitative claim of the paper). Each benchmark executes the experiment
// in quick mode per iteration and logs the result table (visible with
// `go test -bench=E -v`); cmd/ftgcs-experiments produces the full-sweep
// versions.
//
// The trailing micro-benchmarks measure the simulation substrate itself.
// This file is an external test package: the harness imports ftgcs (the
// experiments are Sweep consumers), so an in-package benchmark would be an
// import cycle.
package ftgcs_test

import (
	"bytes"
	"strings"
	"testing"

	"ftgcs"
	"ftgcs/internal/harness"
)

// benchExperiment runs one experiment per iteration and fails the
// benchmark if the experiment errors or any row reports VIOLATED where the
// claim must hold unconditionally.
func benchExperiment(b *testing.B, id string, allowViolations bool) {
	b.Helper()
	exp, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Run(harness.RunConfig{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		if i == 0 {
			b.Log("\n" + buf.String())
		}
		if !allowViolations && strings.Contains(buf.String(), "VIOLATED") {
			b.Fatalf("%s reported a violated bound:\n%s", id, buf.String())
		}
	}
}

func BenchmarkE1_LocalSkewVsDiameter(b *testing.B)     { benchExperiment(b, "E1", false) }
func BenchmarkE2_IntraClusterSkew(b *testing.B)        { benchExperiment(b, "E2", false) }
func BenchmarkE3_ConvergenceRate(b *testing.B)         { benchExperiment(b, "E3", false) }
func BenchmarkE4_UnanimousRates(b *testing.B)          { benchExperiment(b, "E4", true) } // aggressive presets may violate Lemma 3.6 windows (documented finding)
func BenchmarkE5_TriggerExclusivity(b *testing.B)      { benchExperiment(b, "E5", true) } // δ ≥ κ/2 rows document the sharp boundary
func BenchmarkE6_GlobalSkew(b *testing.B)              { benchExperiment(b, "E6", false) }
func BenchmarkE7_FailureProbability(b *testing.B)      { benchExperiment(b, "E7", false) }
func BenchmarkE8_PlainGCSFails(b *testing.B)           { benchExperiment(b, "E8", false) }
func BenchmarkE9_TreeSyncBaseline(b *testing.B)        { benchExperiment(b, "E9", false) }
func BenchmarkE10_GCSAxioms(b *testing.B)              { benchExperiment(b, "E10", false) }
func BenchmarkE11_AugmentationOverhead(b *testing.B)   { benchExperiment(b, "E11", false) }
func BenchmarkE12_ResilienceBoundary(b *testing.B)     { benchExperiment(b, "E12", true) } // >f rows are supposed to break
func BenchmarkE13_SkewVsDelayUncertainty(b *testing.B) { benchExperiment(b, "E13", false) }
func BenchmarkE14_ParameterFeasibility(b *testing.B)   { benchExperiment(b, "E14", false) }

// Ablation studies: design-choice probes, not paper claims.
func BenchmarkA1_TransientFaultRecovery(b *testing.B) { benchExperiment(b, "A1", true) } // beyond-window rows partition by design
func BenchmarkA2_KappaSensitivity(b *testing.B)       { benchExperiment(b, "A2", false) }
func BenchmarkA3_GlobalSkewAblation(b *testing.B)     { benchExperiment(b, "A3", false) }

// --- Substrate micro-benchmarks ---

// BenchmarkSystemSimSecond measures the cost of one simulated second of a
// 5-cluster line (k=4, f=1, one Byzantine per cluster) including the
// global-skew machinery.
func BenchmarkSystemSimSecond(b *testing.B) {
	cfg := ftgcs.Config{
		Topology:    ftgcs.Line(5),
		ClusterSize: 4,
		FaultBudget: 1,
		Rho:         3e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		C2:          4,
		Eps:         0.25,
		Seed:        1,
		Drift:       ftgcs.DriftSpec{Kind: ftgcs.DriftGradient},
	}
	sys, err := ftgcs.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Run(float64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemBuild measures system wiring cost for a 4×4 grid of
// clusters (112 nodes at k=7).
func BenchmarkSystemBuild(b *testing.B) {
	cfg := ftgcs.Config{
		Topology:    ftgcs.Grid(4, 4),
		ClusterSize: 7,
		FaultBudget: 2,
		Rho:         3e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		C2:          4,
		Eps:         0.25,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftgcs.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemReset measures rewinding the BenchmarkSystemBuild system
// in place — the per-additional-seed setup cost of a replicate batch. The
// ratio to BenchmarkSystemBuild is the rebuild tax the reuse path kills.
func BenchmarkSystemReset(b *testing.B) {
	cfg := ftgcs.Config{
		Topology:    ftgcs.Grid(4, 4),
		ClusterSize: 7,
		FaultBudget: 2,
		Rho:         3e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		C2:          4,
		Eps:         0.25,
	}
	sys, err := ftgcs.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Reset(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeriveParams measures the full constant derivation.
func BenchmarkDeriveParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ftgcs.DeriveParams(ftgcs.PresetPractical, 1e-4, 1e-3, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}
