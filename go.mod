module ftgcs

go 1.24
