// Package ftgcs is a from-scratch implementation of Fault-Tolerant
// Gradient Clock Synchronization (Bund, Lenzen, Rosenbaum — PODC 2019,
// arXiv:1902.08042).
//
// The algorithm synchronizes logical clocks across an arbitrary network
// graph 𝒢 so that the worst-case skew between *neighbors* is
// O((ρd+U)·log D) — exponentially better than the Θ(D) global skew — while
// tolerating up to f Byzantine nodes per cluster. It combines:
//
//   - ClusterSync (Algorithm 1): a Lynch–Welch variant with amortized
//     corrections, run inside fully connected clusters of k ≥ 3f+1 nodes
//     that replace each node of 𝒢;
//   - InterclusterSync (Algorithm 2): the Lenzen–Locher–Wattenhofer
//     gradient clock synchronization algorithm simulated on cluster
//     clocks, with fast/slow triggers evaluated on Byzantine-robust
//     estimates of neighboring clusters;
//   - the Appendix C global-skew machinery (max-estimates M_v with
//     fault-tolerant level flooding and a catch-up rule).
//
// The package runs complete systems on a deterministic discrete-event
// simulator: hardware clocks with adversarial drift, message delays in
// [d−U, d], Byzantine attack strategies, and instrumentation for every
// bound the paper proves. See the top-level README.md for a tour of the
// CLIs, the experiment harness, and how to register custom adversaries.
//
// # Quick start
//
//	cfg := ftgcs.Config{
//		Topology:    ftgcs.Line(3),  // three clusters in a line
//		ClusterSize: 4,              // k = 3f+1
//		FaultBudget: 1,              // tolerate 1 Byzantine per cluster
//		Rho:         1e-3,           // hardware drift bound
//		Delay:       1e-3,           // max message delay (s)
//		Uncertainty: 1e-4,           // delay uncertainty (s)
//		Seed:        1,
//	}
//	sys, err := ftgcs.New(cfg)
//	if err != nil { ... }
//	if err := sys.Run(60); err != nil { ... }  // 60 simulated seconds
//	report := sys.Report()
//	fmt.Println(report)
//
// The equivalent options-based form (see Scenario for the full catalog,
// Registry for name-based resolution, and Sweep for parallel batches):
//
//	rep, err := ftgcs.NewScenario(
//		ftgcs.WithTopology(ftgcs.Line(3)),
//		ftgcs.WithClusters(4, 1),
//		ftgcs.WithPhysical(1e-3, 1e-3, 1e-4),
//		ftgcs.WithSeed(1),
//		ftgcs.WithHorizon(60),
//	).Run()
package ftgcs

import (
	"context"
	"fmt"
	"io"
	"math"

	"ftgcs/internal/core"
	"ftgcs/internal/graph"
	"ftgcs/internal/metrics"
	"ftgcs/internal/params"
)

// Re-exported configuration types. These aliases let callers configure
// drift schedules, delay adversaries and fault injections without
// importing internal packages.
type (
	// Topology is a base cluster graph 𝒢 (see the constructors Line,
	// Ring, Grid, Torus, Tree, Clique, Star, Hypercube, Random).
	Topology = graph.Graph
	// DriftSpec selects how hardware clock rates are assigned.
	DriftSpec = core.DriftSpec
	// DelaySpec selects the message delay model.
	DelaySpec = core.DelaySpec
	// FaultSpec marks a node Byzantine (strategy, crash, or off-spec
	// clock).
	FaultSpec = core.FaultSpec
	// Params holds every derived algorithm constant (τ-phases, E, κ, δ…).
	Params = params.Params
	// Preset selects the analysis constants (PresetPaperStrict uses the
	// paper's Eq. 5 values; PresetPractical is feasible at realistic
	// drift).
	Preset = params.Preset
)

// Drift kinds (see core.DriftKind).
const (
	DriftSpread            = core.DriftSpread
	DriftGradient          = core.DriftGradient
	DriftHalves            = core.DriftHalves
	DriftAlternatingHalves = core.DriftAlternatingHalves
	DriftRandomWalk        = core.DriftRandomWalk
	DriftSine              = core.DriftSine
	DriftNone              = core.DriftNone
	DelayUniform           = core.DelayUniform
	DelayExtremal          = core.DelayExtremal
	DelayFixedMid          = core.DelayFixedMid
	DelayPhasedReveal      = core.DelayPhasedReveal
	PresetPaperStrict      = params.PaperStrict
	PresetPractical        = params.Practical
)

// Config describes a complete FTGCS deployment.
type Config struct {
	// Topology is the base graph 𝒢 whose nodes become clusters.
	Topology *Topology
	// ClusterSize is k; must be ≥ 3·FaultBudget+1.
	ClusterSize int
	// FaultBudget is f, the tolerated Byzantine nodes per cluster.
	FaultBudget int

	// Rho bounds hardware clock drift: rates lie in [1, 1+Rho].
	Rho float64
	// Delay is the maximum message delay d (seconds).
	Delay float64
	// Uncertainty is the delay uncertainty U: delays lie in [d−U, d].
	Uncertainty float64
	// Preset selects analysis constants; zero value = PresetPractical.
	Preset Preset
	// C2 and Eps override the preset's constants when non-zero
	// (µ = C2·ρ, contraction margin ε).
	C2, Eps float64

	Seed  int64
	Drift DriftSpec
	// DelayModel selects the delay adversary; zero value = uniform.
	DelayModel DelaySpec
	// Faults lists Byzantine nodes (at most FaultBudget per cluster for
	// the guarantees to hold; exceed it to explore the boundary).
	Faults []FaultSpec
	// DisableGlobalSkew turns off the Appendix C machinery (enabled by
	// default).
	DisableGlobalSkew bool
	// SampleInterval is the metrics sampling period; 0 = T/2.
	SampleInterval float64
}

// System is a runnable FTGCS simulation.
type System struct {
	// sys is the standard core system, nil when a custom Backend
	// (WithBackend) drives the run; core-specific accessors are then
	// inert.
	sys *core.System
	b   Backend
	p   params.Params
}

// New derives the algorithm parameters and wires the complete system
// (clusters, observers, GCS controllers, global-skew estimators, fault
// injections) without running it. It is the legacy entry point; it builds
// through the same Scenario path as the options API.
func New(cfg Config) (*System, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("ftgcs: nil topology")
	}
	return cfg.Scenario().Build()
}

// Params returns the derived algorithm constants.
func (s *System) Params() Params { return s.p }

// Run advances simulated time to the given horizon (seconds). It may be
// called repeatedly with increasing horizons.
func (s *System) Run(until float64) error { return s.b.Run(until) }

// RunContext is Run with cooperative cancellation: a done context aborts
// the run with ctx.Err() after the in-flight simulation event, leaving
// simulated time where the run stopped. The event prefix executed before
// cancellation is identical to an uncanceled run's, so resuming with a
// later Run/RunContext call continues deterministically.
func (s *System) RunContext(ctx context.Context, until float64) error {
	return s.b.RunContext(ctx, until)
}

// Now returns the current simulated time.
func (s *System) Now() float64 { return s.b.Now() }

// Progress returns a snapshot of the run: simulation events executed and
// current simulated time. Unlike every other System method it is safe to
// call from any goroutine while Run/RunContext is in flight — it is how
// the experiment service reports live progress on running jobs.
func (s *System) Progress() Progress { return s.b.Progress() }

// Logical returns node v's logical clock L_v at the current time (NaN for
// custom-backend systems).
func (s *System) Logical(v int) float64 {
	if s.sys == nil {
		return math.NaN()
	}
	return s.sys.Logical(v)
}

// ClusterClock returns cluster c's clock L_C = (L⁺+L⁻)/2 over its correct
// members (Definition 3.3); NaN for custom-backend systems.
func (s *System) ClusterClock(c int) float64 {
	if s.sys == nil {
		return math.NaN()
	}
	return s.sys.ClusterClock(c)
}

// Estimate returns node v's estimate L̃_vB of neighboring cluster b's
// clock (NaN if b is not adjacent to v's cluster, or for custom-backend
// systems).
func (s *System) Estimate(v, b int) float64 {
	if s.sys == nil {
		return math.NaN()
	}
	return s.sys.Estimate(v, b)
}

// Nodes returns the number of physical nodes (|𝒞|·k); 0 for
// custom-backend systems.
func (s *System) Nodes() int {
	if s.sys == nil {
		return 0
	}
	return s.sys.Aug().Net.N()
}

// Clusters returns the number of clusters |𝒞|; 0 for custom-backend
// systems.
func (s *System) Clusters() int {
	if s.sys == nil {
		return 0
	}
	return s.sys.Aug().Clusters()
}

// Diameter returns the hop diameter of the base graph.
func (s *System) Diameter() int { return s.b.Diameter() }

// Series exposes a recorded metric time series (see the core package's
// Series* constants re-exported below), or nil.
func (s *System) Series(name string) *metrics.Series { return s.b.Recorder().Series(name) }

// WriteCSV exports the recorded metric series (all by default) as CSV for
// plotting; one row per sample time, one column per series.
func (s *System) WriteCSV(w io.Writer, names ...string) error {
	return s.b.Recorder().WriteCSV(w, names...)
}

// WriteJSON exports the recorded metric series (all by default) as a JSON
// document; lossless sibling of WriteCSV.
func (s *System) WriteJSON(w io.Writer, names ...string) error {
	return s.b.Recorder().WriteJSON(w, names...)
}

// Summary condenses a finished run: maxima of every recorded skew series
// after the warmup prefix.
type Summary = core.Summary

// Summary computes the run summary, excluding samples before warmup
// (pass 0 to include everything).
func (s *System) Summary(warmup float64) Summary { return s.b.Summarize(warmup) }

// PulseDiameters returns ‖p(r)‖ for cluster c indexed by round, for rounds
// where every correct member pulsed (see the pulse-diameter convergence
// experiment); nil for custom-backend systems.
func (s *System) PulseDiameters(c ClusterID) map[int]float64 {
	if s.sys == nil {
		return nil
	}
	return s.sys.PulseDiameters(c)
}

// RoundTrace returns node v's recorded round boundaries (times, logical
// values, modes). Empty unless the scenario enabled WithRoundTracking.
func (s *System) RoundTrace(v NodeID) (times, values []float64, modes []int8) {
	if s.sys == nil {
		return nil, nil, nil
	}
	return s.sys.RoundTrace(v)
}

// InjectClockFault discontinuously shifts node v's logical clock by delta
// at the current simulation time — a transient fault outside the
// algorithm's fault model (see the self-stabilization ablation).
func (s *System) InjectClockFault(v NodeID, delta float64) error {
	if s.sys == nil {
		return fmt.Errorf("ftgcs: InjectClockFault is not supported on custom-backend systems")
	}
	return s.sys.InjectClockFault(v, delta)
}

// Metric series names.
const (
	SeriesIntraSkew    = core.SeriesIntraSkew
	SeriesLocalCluster = core.SeriesLocalCluster
	SeriesLocalNode    = core.SeriesLocalNode
	SeriesGlobal       = core.SeriesGlobal
	SeriesFastFraction = core.SeriesFastFraction
)

// Report summarizes a run against the paper's bounds.
type Report struct {
	// Horizon is the simulated time covered.
	Horizon float64
	// Warmup is the prefix excluded from the maxima.
	Warmup float64

	// MaxIntraClusterSkew vs Corollary 3.2's 2ϑ_g·E.
	MaxIntraClusterSkew, IntraClusterBound float64
	// MaxLocalSkew (between physical neighbors) vs Theorem 1.1's
	// O((ρd+U)·log D) with explicit constants.
	MaxLocalSkew, LocalSkewBound float64
	// MaxGlobalSkew vs Theorem C.3's O(δD).
	MaxGlobalSkew, GlobalSkewBound float64

	// Events is the number of simulation events processed.
	Events uint64
}

// AllWithinBounds reports whether every measured maximum respects its
// bound.
func (r Report) AllWithinBounds() bool {
	return r.MaxIntraClusterSkew <= r.IntraClusterBound &&
		r.MaxLocalSkew <= r.LocalSkewBound &&
		r.MaxGlobalSkew <= r.GlobalSkewBound
}

// String renders the report for terminals.
func (r Report) String() string {
	line := func(name string, got, bound float64) string {
		status := "ok"
		if got > bound {
			status = "VIOLATED"
		}
		return fmt.Sprintf("  %-22s %.3g  (bound %.3g, %s)\n", name, got, bound, status)
	}
	out := fmt.Sprintf("ftgcs report after %.3gs (warmup %.3gs, %d events)\n", r.Horizon, r.Warmup, r.Events)
	out += line("intra-cluster skew", r.MaxIntraClusterSkew, r.IntraClusterBound)
	out += line("local (neighbor) skew", r.MaxLocalSkew, r.LocalSkewBound)
	out += line("global skew", r.MaxGlobalSkew, r.GlobalSkewBound)
	return out
}

// Report computes the run summary, excluding the first 10% as warmup.
func (s *System) Report() Report {
	warmup := s.Now() / 10
	sum := s.b.Summarize(warmup)
	d := s.Diameter()
	clean := func(v float64) float64 {
		if math.IsInf(v, -1) {
			return 0
		}
		return v
	}
	return Report{
		Horizon:             sum.Horizon,
		Warmup:              warmup,
		MaxIntraClusterSkew: clean(sum.MaxIntraSkew),
		IntraClusterBound:   s.p.ClusterSkewBound(),
		MaxLocalSkew:        clean(sum.MaxLocalNode),
		LocalSkewBound:      s.p.NodeLocalSkewBound(d),
		MaxGlobalSkew:       clean(sum.MaxGlobal),
		GlobalSkewBound:     s.p.GlobalSkewBound(d),
		Events:              sum.Events,
	}
}

// DeriveParams computes the algorithm constants for the given physical
// parameters and preset without building a system. The zero Preset means
// PresetPractical.
func DeriveParams(preset Preset, rho, delay, uncertainty float64) (Params, error) {
	return deriveParams(preset, rho, delay, uncertainty, 0, 0)
}
