package ftgcs

import (
	"fmt"
	"runtime"
	"sync"
)

// SweepResult is the outcome of one scenario within a sweep, in input
// order.
type SweepResult struct {
	// Index is the scenario's position in the input slice.
	Index int
	// Name is the scenario's display name.
	Name string
	// Report is the standard bound report (10% warmup).
	Report Report
	// Summary carries the raw skew maxima after the same warmup.
	Summary Summary
	// Value is whatever the scenario's WithObserver extracted, or nil.
	Value any
	// Err is non-nil when the scenario failed to build or run; the other
	// fields are then zero.
	Err error
}

// Sweep executes a set of scenarios across a bounded worker pool of
// goroutines. Every scenario is a self-contained deterministic simulation
// (its own engine and RNG streams derived from its seed), so results are
// identical for any worker count — parallelism only changes wall-clock
// time. Scenarios without an explicit WithSeed get the deterministic seed
// BaseSeed+Index.
type Sweep struct {
	// Workers bounds the pool; ≤0 selects GOMAXPROCS.
	Workers int
	// BaseSeed seeds scenarios that did not set WithSeed.
	BaseSeed int64
}

// Run executes the scenarios and returns one result per scenario, in
// input order. Individual failures are reported per result, never
// panicking the pool.
func (sw Sweep) Run(scenarios []*Scenario) []SweepResult {
	out := make([]SweepResult, len(scenarios))
	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = sw.runOne(scenarios[i], i)
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// runOne executes a single scenario, converting panics into errors so one
// bad scenario cannot take down the whole sweep.
func (sw Sweep) runOne(sc *Scenario, index int) (res SweepResult) {
	res = SweepResult{Index: index, Name: sc.Name()}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("ftgcs: scenario %d (%s) panicked: %v", index, sc.Name(), r)
		}
	}()
	if _, ok := sc.Seeded(); !ok {
		sc = sc.With(WithSeed(sw.BaseSeed + int64(index)))
	}
	sys, err := sc.Build()
	if err != nil {
		res.Err = err
		return res
	}
	rep, value, err := sc.executeOn(sys)
	if err != nil {
		res.Err = err
		return res
	}
	res.Report = rep
	res.Summary = sys.Summary(rep.Warmup)
	res.Value = value
	return res
}

// RunSweep executes the scenarios with default settings (GOMAXPROCS
// workers, base seed 0) and returns the first error encountered, if any,
// alongside the full result set.
func RunSweep(scenarios ...*Scenario) ([]SweepResult, error) {
	results := Sweep{}.Run(scenarios)
	for _, r := range results {
		if r.Err != nil {
			return results, fmt.Errorf("sweep scenario %d (%s): %w", r.Index, r.Name, r.Err)
		}
	}
	return results, nil
}
