package ftgcs

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// SweepResult is the outcome of one scenario within a sweep, in input
// order.
type SweepResult struct {
	// Index is the scenario's position in the input slice.
	Index int
	// Name is the scenario's display name.
	Name string
	// Report is the standard bound report (10% warmup).
	Report Report
	// Summary carries the raw skew maxima after the same warmup.
	Summary Summary
	// Value is whatever the scenario's WithObserver extracted, or nil.
	Value any
	// Err is non-nil when the scenario failed to build or run; the other
	// fields are then zero. When a RunContext sweep is canceled,
	// interrupted and undispatched scenarios carry the context's error
	// (errors.Is(Err, ctx.Err())).
	Err error
}

// Sweep executes a set of scenarios across a bounded worker pool of
// goroutines. Every scenario is a self-contained deterministic simulation
// (its own engine and RNG streams derived from its seed), so results are
// identical for any worker count — parallelism only changes wall-clock
// time. Scenarios without an explicit WithSeed get the deterministic seed
// BaseSeed+Index.
type Sweep struct {
	// Workers bounds the pool; ≤0 selects GOMAXPROCS.
	Workers int
	// BaseSeed seeds scenarios that did not set WithSeed.
	BaseSeed int64
	// NoReuse disables the per-worker system-reuse fast path: every
	// scenario gets a freshly built System even when consecutive scenarios
	// on a worker share a build key. Reuse is semantically invisible —
	// Reset guarantees byte-identical results — so this exists as an
	// escape hatch and for differential testing of that guarantee.
	// NoReuse also disables Pool.
	NoReuse bool
	// Pool, when non-nil, shares built Systems beyond this sweep: workers
	// whose cached system misses the build key consult the pool before
	// building, and hand their systems back (on replacement and at worker
	// exit) for later sweeps to reuse. Semantically invisible for the
	// same reason per-worker reuse is — Reset guarantees byte-identical
	// results.
	Pool *SystemPool

	// OnSystemStart, when set, is called from a worker goroutine right
	// after a scenario's System is built, immediately before it runs. The
	// system's Progress method is the only one safe to call from other
	// goroutines while the run is in flight — this hook is how the jobs
	// manager tracks live progress of running experiments. horizon is the
	// scenario's resolved simulated duration (seconds).
	OnSystemStart func(index int, sys *System, horizon float64)
	// OnScenarioDone, when set, is called from a worker goroutine as each
	// scenario finishes (successfully, with an error, or interrupted),
	// before its slot in the result slice is visible to the caller.
	OnScenarioDone func(index int, res SweepResult)
}

// Run executes the scenarios and returns one result per scenario, in
// input order. Individual failures are reported per result, never
// panicking the pool.
func (sw Sweep) Run(scenarios []*Scenario) []SweepResult {
	return sw.run(nil, scenarios)
}

// RunContext is Run with cooperative cancellation: when ctx is done, the
// sweep stops dispatching queued scenarios and interrupts in-flight ones.
// Scenarios that completed before the cancellation carry results
// byte-identical to the same scenarios in an uncanceled sweep;
// interrupted and undispatched ones carry ctx.Err() in their Err field.
func (sw Sweep) RunContext(ctx context.Context, scenarios []*Scenario) []SweepResult {
	return sw.run(ctx, scenarios)
}

// run is the shared pool; ctx may be nil (uncancelable).
func (sw Sweep) run(ctx context.Context, scenarios []*Scenario) []SweepResult {
	out := make([]SweepResult, len(scenarios))
	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done() // nil channel (blocks forever) when ctx is nil
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker keeps the last system it built and reuses it via
			// Reset when the next scenario shares the build key — replicate
			// batches pay one build instead of one per seed.
			var cache workerCache
			for i := range jobs {
				res := sw.runOne(ctx, scenarios[i], i, &cache)
				if sw.OnScenarioDone != nil {
					sw.OnScenarioDone(i, res)
				}
				out[i] = res
			}
			// The worker's last system outlives this sweep through the
			// pool (Release drops non-poolable pairs; the panic path in
			// runOne cleared the cache already).
			if !sw.NoReuse {
				sw.Pool.Release(cache.sc, cache.sys)
			}
		}()
	}
	for i := range scenarios {
		select {
		case <-done:
			// Cancellation: stop dispatching. Everything not yet handed to
			// a worker reports the context error; in-flight scenarios are
			// interrupted by their own RunContext polling.
			for j := i; j < len(scenarios); j++ {
				res := SweepResult{Index: j, Name: scenarios[j].Name(), Err: ctx.Err()}
				if sw.OnScenarioDone != nil {
					sw.OnScenarioDone(j, res)
				}
				out[j] = res
			}
			close(jobs)
			wg.Wait()
			return out
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// workerCache holds one worker's reusable system alongside the scenario
// that built (or last reset) it — the build key for the next reuse check.
type workerCache struct {
	sc  *Scenario
	sys *System
}

// acquireSystem returns a system ready to run sc: the worker's cached
// system rewound to sc's seed when the build keys match, a pooled system
// from Sweep.Pool next, a fresh build last. The cache is updated to the
// returned system (and dropped entirely when a Reset fails, leaving the
// old system in an undefined state); a cached system displaced by a
// different build key is released to the pool rather than dropped.
func (sw Sweep) acquireSystem(sc *Scenario, cache *workerCache) (*System, error) {
	if cache != nil && !sw.NoReuse && cache.sys != nil &&
		cache.sys.CanReset() && sc.SameBuild(cache.sc) {
		if err := cache.sys.Reset(sc.seed); err == nil {
			cache.sc = sc
			return cache.sys, nil
		}
		cache.sc, cache.sys = nil, nil
	}
	if cache != nil && !sw.NoReuse && sw.Pool != nil {
		if sys := sw.Pool.Acquire(sc); sys != nil {
			sw.Pool.Release(cache.sc, cache.sys)
			cache.sc, cache.sys = sc, sys
			return sys, nil
		}
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	if cache != nil {
		if !sw.NoReuse {
			sw.Pool.Release(cache.sc, cache.sys)
		}
		cache.sc, cache.sys = sc, sys
	}
	return sys, nil
}

// runOne executes a single scenario, converting panics into errors so one
// bad scenario cannot take down the whole sweep.
func (sw Sweep) runOne(ctx context.Context, sc *Scenario, index int, cache *workerCache) (res SweepResult) {
	res = SweepResult{Index: index, Name: sc.Name()}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("ftgcs: scenario %d (%s) panicked: %v", index, sc.Name(), r)
			// A panic mid-run leaves the system in an unknown state; never
			// offer it for reuse.
			if cache != nil {
				cache.sc, cache.sys = nil, nil
			}
		}
	}()
	// A scenario dispatched in the same instant the sweep was canceled
	// skips even its build: promptness over starting doomed work.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
	}
	if _, ok := sc.Seeded(); !ok {
		sc = sc.With(WithSeed(sw.BaseSeed + int64(index)))
	}
	if !sw.NoReuse && sw.Pool != nil {
		// Pinned topologies intern through the pool so this scenario's
		// build key is pointer-comparable with systems pooled by other
		// sweeps (equal graphs simulate byte-identically).
		sc = sc.withInternedTopology(sw.Pool)
	}
	sys, err := sw.acquireSystem(sc, cache)
	if err != nil {
		res.Err = err
		return res
	}
	if sw.OnSystemStart != nil {
		sw.OnSystemStart(index, sys, sc.Horizon(sys.Params()))
	}
	rep, value, err := sc.executeOn(ctx, sys)
	if err != nil {
		res.Err = err
		return res
	}
	res.Report = rep
	res.Summary = sys.Summary(rep.Warmup)
	res.Value = value
	return res
}

// RunSweep executes the scenarios with default settings (GOMAXPROCS
// workers, base seed 0) and returns the first error encountered, if any,
// alongside the full result set.
func RunSweep(scenarios ...*Scenario) ([]SweepResult, error) {
	results := Sweep{}.Run(scenarios)
	for _, r := range results {
		if r.Err != nil {
			return results, fmt.Errorf("sweep scenario %d (%s): %w", r.Index, r.Name, r.Err)
		}
	}
	return results, nil
}
